// Package tune closes the closed-loop PGO gap the one-shot tool leaves open
// (EXPERIMENTS.md §4.5): the paper's post-pass profiles once, ranks
// delinquent loads once, adapts once. Tune instead runs the adapted image,
// harvests the dense per-load miss-cycle stats from that run itself
// (profile.Rebase), re-ranks the residual delinquent loads with
// ssp.RankTargets — the same per-hot-region portfolio ranking the one-shot
// tool uses, so a region whose misses only become prominent once the first
// portfolio covers the dominant one earns its own slice in a later round —
// re-slices with ssp.AdaptTargets, and iterates until the speedup converges
// (epsilon + max-rounds stopping rule). Every
// round is gated by the check layer: conservation on the round's result
// (inside exp.Suite's execution discipline) and the metamorphic invariant
// against the baseline run, so a bad re-adapt can never regress silently.
//
// On top of the loop sits an options auto-tuner: a small grid over the
// ssp.Options knobs the hand adaptations effectively tuned by eye
// (ChainUnroll, region depth, chain bound), each grid point evaluated with
// its own adaptive loop on the exp.Suite worker pool, memoized per
// (bench, model, params, options) so repeated tuning requests — the serving
// layer's tune mode — coalesce and hit cache.
//
// Targets accumulate across rounds (the union of every round's ranking)
// because re-profiling an adapted image shows covered loads as healthy: a
// naive re-adapt from the residual profile alone would drop exactly the
// slices that are working. Accumulation makes the target set monotone, which
// bounds the loop: once no round discovers a new target and the speedup
// delta falls under epsilon, the trajectory has converged.
package tune

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"ssp/internal/check"
	"ssp/internal/exp"
	"ssp/internal/flight"
	"ssp/internal/sim"
	"ssp/internal/ssp"
)

// ErrGate marks a tuning round that failed a check-layer invariant. A gate
// violation is a correctness bug (tool or simulator), never a bad
// configuration, so Tune fails the whole search loudly instead of scoring
// around it.
var ErrGate = errors.New("tune: round failed validation gate")

// Params bounds one adaptive loop.
type Params struct {
	// MaxRounds caps the re-profiling iterations run after the one-shot
	// adaptation (round 0), so a trajectory holds at most MaxRounds+1
	// entries. Zero means the default of 3.
	MaxRounds int
	// Epsilon is the relative speedup-delta convergence threshold: a round
	// that discovers no new targets and moves the speedup by at most
	// Epsilon×previous ends the loop. Zero means the default of 0.02.
	Epsilon float64
}

func (p Params) withDefaults() Params {
	if p.MaxRounds <= 0 {
		p.MaxRounds = 3
	}
	if p.Epsilon <= 0 {
		p.Epsilon = 0.02
	}
	return p
}

// GridPoint is one auto-tuner search point: an option set with a short
// human-readable label (the knobs it changes from the default).
type GridPoint struct {
	Label   string      `json:"label"`
	Options ssp.Options `json:"options"`
}

// QuickGrid is the smoke-test search: the default configuration plus the
// two cheapest high-yield ChainUnroll points.
func QuickGrid() []GridPoint {
	def := ssp.DefaultOptions()
	u2, u3 := def, def
	u2.ChainUnroll = 2
	u3.ChainUnroll = 3
	return []GridPoint{
		{Label: "default", Options: def},
		{Label: "unroll=2", Options: u2},
		{Label: "unroll=3", Options: u3},
	}
}

// FullGrid is the paper-scale search over the knobs §4.5 attributes the
// auto-vs-hand gap to: chain unrolling (slack widening), region depth
// (interprocedural slack), and the chain countdown bound.
func FullGrid() []GridPoint {
	def := ssp.DefaultOptions()
	pt := func(label string, f func(*ssp.Options)) GridPoint {
		o := def
		f(&o)
		return GridPoint{Label: label, Options: o}
	}
	return []GridPoint{
		{Label: "default", Options: def},
		pt("unroll=2", func(o *ssp.Options) { o.ChainUnroll = 2 }),
		pt("unroll=3", func(o *ssp.Options) { o.ChainUnroll = 3 }),
		pt("unroll=4", func(o *ssp.Options) { o.ChainUnroll = 4 }),
		pt("unroll=2,depth=6", func(o *ssp.Options) { o.ChainUnroll = 2; o.MaxRegionDepth = 6 }),
		pt("unroll=2,bound=256", func(o *ssp.Options) { o.ChainUnroll = 2; o.ChainBound = 256 }),
		pt("unroll=3,bound=256", func(o *ssp.Options) { o.ChainUnroll = 3; o.ChainBound = 256 }),
		pt("depth=6", func(o *ssp.Options) { o.MaxRegionDepth = 6 }),
		pt("bound=64", func(o *ssp.Options) { o.ChainBound = 64 }),
	}
}

// Round is one trajectory entry of the adaptive loop.
type Round struct {
	// Round numbers the iteration; 0 is the one-shot adaptation.
	Round int `json:"round"`
	// Targets is the (cumulative) delinquent set adapted this round.
	Targets []int `json:"targets"`
	// NewTargets lists targets this round's re-profiling discovered.
	NewTargets []int `json:"new_targets,omitempty"`
	// Skipped carries the tool's covered/skipped accounting for the round.
	Skipped []ssp.SkippedLoad `json:"skipped,omitempty"`
	// Regions names the hot regions the round's slice portfolio covers, in
	// slice order without duplicates.
	Regions []string `json:"regions,omitempty"`
	// NewRegions lists regions covered for the first time this round: the
	// re-profiling loop surfaced a hot region the earlier portfolios missed.
	NewRegions []string `json:"new_regions,omitempty"`
	// Slices is the adapted image's p-slice count.
	Slices int `json:"slices"`
	// Cycles is the round's simulated cycle count.
	Cycles int64 `json:"cycles"`
	// Speedup is base cycles over this round's cycles.
	Speedup float64 `json:"speedup"`
	// ResidualMissCycles is the main thread's miss cycles measured from
	// this round's own run — what the image left unprefetched, and the
	// ranking input of the next round.
	ResidualMissCycles uint64 `json:"residual_miss_cycles"`
}

// Candidate is one grid point's evaluated trajectory.
type Candidate struct {
	Label   string      `json:"label"`
	Options ssp.Options `json:"options"`
	Rounds  []Round     `json:"rounds,omitempty"`
	// Best and BestRound locate the trajectory's highest speedup; the
	// tuner answers with the best round's image, not the last (an
	// oscillating loop keeps its peak).
	Best      float64 `json:"best_speedup"`
	BestRound int     `json:"best_round"`
	// Converged reports the loop ended by the stopping rule (no new
	// targets, speedup delta under epsilon) rather than by MaxRounds.
	Converged bool `json:"converged"`
	// Err records a candidate-local failure (an option set the tool
	// rejects); the search continues over the other points.
	Err string `json:"error,omitempty"`
}

// Result is one workload's complete tuning outcome.
type Result struct {
	Bench      string       `json:"bench"`
	Model      string       `json:"model"`
	Scale      string       `json:"scale"`
	BaseCycles int64        `json:"base_cycles"`
	OneShot    float64      `json:"one_shot_speedup"`
	Best       *Candidate   `json:"best"`
	Candidates []*Candidate `json:"candidates"`
}

// Tuner runs tuning searches over one exp.Suite, sharing its caches,
// machine pool, and worker budget. Safe for concurrent use; repeated
// searches of the same (bench, model, params, options) coalesce onto
// memoized candidate cells.
type Tuner struct {
	Suite *exp.Suite
	// Progress, when non-nil, receives one line per completed round. It
	// may be called from many goroutines at once.
	Progress func(format string, args ...any)

	mu    sync.Mutex
	cands map[string]*flight.Cell[*Candidate]
}

// New returns a Tuner over the given suite.
func New(s *exp.Suite) *Tuner {
	return &Tuner{Suite: s, cands: make(map[string]*flight.Cell[*Candidate])}
}

func (t *Tuner) logf(format string, args ...any) {
	if t.Progress != nil {
		t.Progress(format, args...)
	}
}

// Tune evaluates every grid point's adaptive loop for one benchmark and
// model and returns the best configuration with its full trajectory. A nil
// grid means FullGrid. Candidate-local adaptation failures are recorded on
// the candidate; gate violations (ErrGate) abort the whole search.
func (t *Tuner) Tune(ctx context.Context, bench string, model sim.Model, params Params, grid []GridPoint) (*Result, error) {
	params = params.withDefaults()
	if grid == nil {
		grid = FullGrid()
	}
	if len(grid) == 0 {
		return nil, fmt.Errorf("tune: empty grid")
	}
	base, err := t.Suite.RunContext(ctx, bench, model, exp.VarBase)
	if err != nil {
		return nil, fmt.Errorf("tune: baseline %s/%s: %w", bench, model, err)
	}

	// Fan the grid out over the suite's worker budget. Round-0 cells of
	// identical option sets coalesce inside the suite.
	workers := t.Suite.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(grid) {
		workers = len(grid)
	}
	cands := make([]*Candidate, len(grid))
	errs := make([]error, len(grid))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, gp := range grid {
		wg.Add(1)
		go func(i int, gp GridPoint) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			cands[i], errs[i] = t.candidate(ctx, bench, model, params, gp, base.Cycles)
		}(i, gp)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			// Context and gate errors are fatal; the first is as good
			// as any (the loop is deterministic).
			return nil, err
		}
	}

	res := &Result{
		Bench:      bench,
		Model:      model.String(),
		Scale:      scaleName(t.Suite.Scale),
		BaseCycles: base.Cycles,
		Candidates: cands,
	}
	for _, c := range cands {
		if c.Err != "" {
			continue
		}
		if res.Best == nil || c.Best > res.Best.Best {
			res.Best = c
		}
	}
	if res.Best == nil {
		return nil, fmt.Errorf("tune: %s/%s: every grid point failed", bench, model)
	}
	// The one-shot reference: round 0 of the default configuration (cache
	// hit when the grid includes it, one extra cell when it doesn't).
	oneShot, err := t.Suite.RunOptions(ctx, bench, model, ssp.DefaultOptions())
	if err != nil {
		return nil, fmt.Errorf("tune: one-shot reference: %w", err)
	}
	res.OneShot = float64(base.Cycles) / float64(oneShot.Cycles)
	return res, nil
}

// candidate evaluates one grid point through the memoized cell layer.
func (t *Tuner) candidate(ctx context.Context, bench string, model sim.Model, params Params, gp GridPoint, baseCycles int64) (*Candidate, error) {
	key := fmt.Sprintf("%s|%s|%d|%g|%s", bench, model, params.MaxRounds, params.Epsilon, gp.Options.Key())
	t.mu.Lock()
	c, ok := t.cands[key]
	if !ok {
		c = new(flight.Cell[*Candidate])
		t.cands[key] = c
	}
	t.mu.Unlock()
	return c.Do(ctx, func(ctx context.Context) (*Candidate, error) {
		return t.loop(ctx, bench, model, params, gp, baseCycles)
	})
}

// loop runs the adaptive re-profiling loop for one configuration.
func (t *Tuner) loop(ctx context.Context, bench string, model sim.Model, params Params, gp GridPoint, baseCycles int64) (*Candidate, error) {
	cand := &Candidate{Label: gp.Label, Options: gp.Options}
	opt := gp.Options
	orig, want, prof, err := t.Suite.Workload(ctx, bench)
	if err != nil {
		return nil, err
	}
	baseRes, err := t.Suite.RunContext(ctx, bench, model, exp.VarBase)
	if err != nil {
		return nil, err
	}

	// Round 0: the ordinary one-shot adaptation, through the suite's
	// options-keyed cells (conservation-checked inside).
	res, err := t.Suite.RunOptions(ctx, bench, model, opt)
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		cand.Err = err.Error()
		return cand, nil
	}
	_, rep, err := t.Suite.ProgramOptions(ctx, bench, opt)
	if err != nil {
		return nil, err
	}
	if err := check.MetamorphicResults(baseRes, res); err != nil {
		return nil, fmt.Errorf("%w: %s/%s/%s round 0: %v", ErrGate, bench, model, gp.Label, err)
	}

	targets := append([]int(nil), rep.DelinquentLoads...)
	have := make(map[int]bool, len(targets))
	for _, id := range targets {
		have[id] = true
	}
	regions := sliceRegions(rep)
	seenRegion := make(map[string]bool, len(regions))
	for _, r := range regions {
		seenRegion[r] = true
	}
	resProf := prof.Rebase(res, orig)
	prev := t.record(cand, Round{
		Round:              0,
		Targets:            targets,
		Skipped:            rep.Skipped,
		Regions:            regions,
		Slices:             rep.NumSlices(),
		Cycles:             res.Cycles,
		Speedup:            float64(baseCycles) / float64(res.Cycles),
		ResidualMissCycles: resProf.TotalMissCycles,
	}, bench, model, gp.Label)

	for round := 1; round <= params.MaxRounds; round++ {
		// Re-rank from the residual profile with the portfolio ranking;
		// keep every prior target (covered loads look healthy in the
		// residual — dropping them would undo working slices and
		// oscillate). A region that was below the hotness floor while the
		// dominant region's misses swamped the profile can clear it here
		// once those misses are prefetched away, adding its loads — and a
		// new slice — to the union.
		var newTargets []int
		for _, id := range ssp.RankTargets(orig, resProf, opt) {
			if !have[id] {
				have[id] = true
				newTargets = append(newTargets, id)
			}
		}
		targets = append(targets, newTargets...)

		adapted, rep, err := ssp.AdaptTargets(orig, resProf, opt, bench, targets)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			cand.Err = fmt.Sprintf("round %d: re-adapt: %v", round, err)
			return cand, nil
		}
		label := fmt.Sprintf("%s/%s/r%d", bench, gp.Label, round)
		res, err = t.Suite.Simulate(ctx, label, model, adapted, want)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			// The round image ran and failed validation inside the
			// suite (watchdog, checksum, conservation): a gate, not a
			// configuration problem.
			return nil, fmt.Errorf("%w: %s round %d: %v", ErrGate, label, round, err)
		}
		if err := check.MetamorphicResults(baseRes, res); err != nil {
			return nil, fmt.Errorf("%w: %s round %d: %v", ErrGate, label, round, err)
		}

		regions = sliceRegions(rep)
		var newRegions []string
		for _, r := range regions {
			if !seenRegion[r] {
				seenRegion[r] = true
				newRegions = append(newRegions, r)
			}
		}
		resProf = prof.Rebase(res, orig)
		sp := float64(baseCycles) / float64(res.Cycles)
		t.record(cand, Round{
			Round:              round,
			Targets:            append([]int(nil), targets...),
			NewTargets:         newTargets,
			Skipped:            rep.Skipped,
			Regions:            regions,
			NewRegions:         newRegions,
			Slices:             rep.NumSlices(),
			Cycles:             res.Cycles,
			Speedup:            sp,
			ResidualMissCycles: resProf.TotalMissCycles,
		}, bench, model, gp.Label)

		if len(newTargets) == 0 && abs(sp-prev) <= params.Epsilon*prev {
			cand.Converged = true
			break
		}
		prev = sp
	}

	for _, r := range cand.Rounds {
		if r.Speedup > cand.Best {
			cand.Best = r.Speedup
			cand.BestRound = r.Round
		}
	}
	return cand, nil
}

// record appends a round, narrates it, and returns its speedup.
func (t *Tuner) record(cand *Candidate, r Round, bench string, model sim.Model, label string) float64 {
	cand.Rounds = append(cand.Rounds, r)
	t.logf("%s/%s %s round %d: %.2fx (%d targets, %d slices, %d new, residual %d Mcycles)",
		bench, model, label, r.Round, r.Speedup, len(r.Targets), r.Slices, len(r.NewTargets),
		r.ResidualMissCycles/1_000_000)
	return r.Speedup
}

// sliceRegions returns the distinct regions of a report's slice portfolio in
// slice order.
func sliceRegions(rep *ssp.Report) []string {
	var out []string
	seen := make(map[string]bool, len(rep.Slices))
	for _, s := range rep.Slices {
		if !seen[s.Region] {
			seen[s.Region] = true
			out = append(out, s.Region)
		}
	}
	return out
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func scaleName(s exp.Scale) string {
	if s == exp.ScaleTest {
		return "test"
	}
	return "paper"
}
