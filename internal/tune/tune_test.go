package tune

import (
	"context"
	"testing"

	"ssp/internal/exp"
	"ssp/internal/sim"
	"ssp/internal/ssp"
)

func testTuner() *Tuner {
	return New(exp.NewSuite(exp.ScaleTest))
}

func TestTuneMcfQuickGrid(t *testing.T) {
	tn := testTuner()
	res, err := tn.Tune(context.Background(), "mcf", sim.InOrder, Params{MaxRounds: 2}, QuickGrid())
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil || len(res.Candidates) != len(QuickGrid()) {
		t.Fatalf("result shape: best=%v candidates=%d", res.Best, len(res.Candidates))
	}
	if res.BaseCycles <= 0 || res.OneShot <= 0 {
		t.Fatalf("base cycles %d, one-shot %v", res.BaseCycles, res.OneShot)
	}
	// The default configuration's round 0 IS the one-shot tool, so the
	// best-of-search can never fall below it.
	if res.Best.Best < res.OneShot {
		t.Fatalf("best %.3fx below one-shot %.3fx", res.Best.Best, res.OneShot)
	}
	for _, c := range res.Candidates {
		if c.Err != "" {
			t.Fatalf("candidate %s failed: %s", c.Label, c.Err)
		}
		if len(c.Rounds) == 0 || len(c.Rounds) > 3 { // one-shot + MaxRounds re-profiles
			t.Fatalf("candidate %s has %d rounds", c.Label, len(c.Rounds))
		}
		if c.Best <= 0 || c.BestRound < 0 || c.BestRound >= len(c.Rounds) {
			t.Fatalf("candidate %s best %.3f at round %d of %d", c.Label, c.Best, c.BestRound, len(c.Rounds))
		}
		// Targets accumulate monotonically: each round's set extends the
		// previous round's as a prefix.
		for i := 1; i < len(c.Rounds); i++ {
			prev, cur := c.Rounds[i-1].Targets, c.Rounds[i].Targets
			if len(cur) < len(prev) {
				t.Fatalf("candidate %s round %d dropped targets: %v -> %v", c.Label, i, prev, cur)
			}
			for j, id := range prev {
				if cur[j] != id {
					t.Fatalf("candidate %s round %d reordered targets: %v -> %v", c.Label, i, prev, cur)
				}
			}
			if len(c.Rounds[i].NewTargets) != len(cur)-len(prev) {
				t.Fatalf("candidate %s round %d new-target accounting: %v vs %v -> %v",
					c.Label, i, c.Rounds[i].NewTargets, prev, cur)
			}
		}
	}
}

func TestTuneMemoizesCandidates(t *testing.T) {
	tn := testTuner()
	ctx := context.Background()
	r1, err := tn.Tune(ctx, "treeadd.df", sim.InOrder, Params{MaxRounds: 2}, QuickGrid())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := tn.Tune(ctx, "treeadd.df", sim.InOrder, Params{MaxRounds: 2}, QuickGrid())
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Candidates {
		if r1.Candidates[i] != r2.Candidates[i] {
			t.Fatalf("candidate %d recomputed instead of hitting its cell", i)
		}
	}
	// Different params must not share cells.
	r3, err := tn.Tune(ctx, "treeadd.df", sim.InOrder, Params{MaxRounds: 3}, QuickGrid())
	if err != nil {
		t.Fatal(err)
	}
	if r3.Candidates[0] == r1.Candidates[0] {
		t.Fatal("params-differing searches shared a candidate cell")
	}
}

// TestTuneSurfacesNewRegion drives the loop into the case the one-shot tool
// cannot see: with the region-hotness floor set between the two phases' miss
// shares, round 0 of rand.2p targets only the dominant phase. Once that
// phase's slice prefetches its misses away, the second phase dominates the
// residual profile, clears the floor, and a later round must grow the
// portfolio with its region.
func TestTuneSurfacesNewRegion(t *testing.T) {
	tn := testTuner()
	opt := ssp.DefaultOptions()
	opt.MinRegionMissFrac = 0.5
	grid := []GridPoint{{Label: "floor=0.5", Options: opt}}
	res, err := tn.Tune(context.Background(), "rand.2p", sim.InOrder, Params{MaxRounds: 2}, grid)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Candidates[0]
	if c.Err != "" {
		t.Fatalf("candidate failed: %s", c.Err)
	}
	r0 := c.Rounds[0]
	if len(r0.Regions) != 1 {
		t.Fatalf("round 0 covered regions %v, want the dominant phase only", r0.Regions)
	}
	if len(r0.NewRegions) != 0 {
		t.Fatalf("round 0 reported new regions %v; the field means newly surfaced, not initial", r0.NewRegions)
	}
	grew := false
	for _, r := range c.Rounds[1:] {
		if len(r.NewRegions) == 0 {
			continue
		}
		grew = true
		if r.Slices < 2 {
			t.Fatalf("round %d surfaced region %v but emitted %d slices", r.Round, r.NewRegions, r.Slices)
		}
		if len(r.Regions) < 2 {
			t.Fatalf("round %d regions %v inconsistent with new regions %v", r.Round, r.Regions, r.NewRegions)
		}
	}
	if !grew {
		t.Fatalf("no round surfaced a new region; rounds: %+v", c.Rounds)
	}
}

func TestTuneRejectsEmptyGrid(t *testing.T) {
	tn := testTuner()
	if _, err := tn.Tune(context.Background(), "mcf", sim.InOrder, Params{}, []GridPoint{}); err == nil {
		t.Fatal("empty grid accepted")
	}
}

func TestTuneUnknownBench(t *testing.T) {
	tn := testTuner()
	if _, err := tn.Tune(context.Background(), "nope", sim.InOrder, Params{}, QuickGrid()); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestCancelledTuneReturnsCtxErr(t *testing.T) {
	tn := testTuner()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := tn.Tune(ctx, "mcf", sim.InOrder, Params{}, QuickGrid()); err == nil {
		t.Fatal("cancelled tune succeeded")
	}
}
