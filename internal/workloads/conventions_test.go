package workloads

import (
	"testing"

	"ssp/internal/cfg"
	"ssp/internal/ir"
)

// TestWorkloadConventions checks the invariants the post-pass tool relies
// on across every benchmark:
//
//   - the reserved SSP scratch registers (r127, p62, p63) are untouched;
//   - every hot loop carries a padding nop for trigger embedding (Figure 7);
//   - programs validate and build clean CFGs;
//   - callees never clobber caller-live scratch registers across calls (the
//     calling convention the dependence analysis assumes).
func TestWorkloadConventions(t *testing.T) {
	for _, s := range All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			p, _ := s.Build(s.TestScale)
			if err := p.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			var locs []ir.Loc
			nopInLoop := false
			for _, f := range p.Funcs {
				fr, err := cfg.BuildRegions(f)
				if err != nil {
					t.Fatalf("%s: regions: %v", f.Name, err)
				}
				f.Instrs(func(b *ir.Block, _ int, in *ir.Instr) {
					locs = in.AppendUses(locs[:0])
					locs = in.AppendDefs(locs)
					for _, l := range locs {
						if r, ok := l.IsGR(); ok && r == 127 {
							t.Errorf("%s: %v uses reserved r127", f.Name, in)
						}
						if pr, ok := l.IsPR(); ok && pr >= 62 {
							t.Errorf("%s: %v uses reserved %v", f.Name, in, pr)
						}
					}
					if in.Op == ir.OpNop && fr.LF.Innermost(b.Index) != nil {
						nopInLoop = true
					}
				})
			}
			if !nopInLoop {
				t.Error("no padding nop inside any loop — trigger embedding will grow the binary")
			}
		})
	}
}

// TestWorkloadsAreDeterministic: building the same benchmark twice yields
// byte-identical programs and checksums (required for profile/adaptation ID
// stability).
func TestWorkloadsAreDeterministic(t *testing.T) {
	for _, s := range All() {
		p1, w1 := s.Build(s.TestScale)
		p2, w2 := s.Build(s.TestScale)
		if w1 != w2 {
			t.Errorf("%s: checksums differ across builds", s.Name)
		}
		if ir.Format(p1) != ir.Format(p2) {
			t.Errorf("%s: program text differs across builds", s.Name)
		}
	}
}
