package workloads

import (
	"math"

	"ssp/internal/ir"
)

// Em3d reproduces the Olden em3d compute kernel: electromagnetic propagation
// on a bipartite graph, iterated over two time steps as in the original. E
// nodes form a linked list; each holds pointers to four H-node dependencies
// whose values are gathered (the delinquent loads, all on randomly placed
// records), scaled by per-dependency coefficients, and subtracted from the
// node's own field value — floating-point work, as in the original
// benchmark:
//
//	for (t = 0; t < steps; t++)
//	    for (e = elist; e; e = e->next)
//	        for (d = 0; d < 4; d++)
//	            e->value -= e->coeff[d] * e->dep[d]->value;
//
// The list linkage itself is a pointer recurrence, but each iteration issues
// four independent delinquent loads — exactly the "exploitable parallelism
// among the prefetches" the paper leans on (§1).
func Em3d() Spec {
	return Spec{
		Name:        "em3d",
		Description: "electromagnetic propagation over a bipartite pointer graph (FP kernel)",
		Scale:       30000,
		TestScale:   1200,
		Build:       buildEm3d,
	}
}

const (
	emNext   = 0
	emValue  = 8
	emDep0   = 16 // four dependency pointers: 16, 24, 32, 40
	emCoeff0 = 48 // first two coefficients share the record's line,
	// the other two live on the next line of the 128-byte record
	emRecSize = 128
)

func buildEm3d(n int) (*ir.Program, uint64) {
	p := ir.NewProgram("main")
	// H nodes first, then E nodes, both shuffled.
	hNodes := newHeap(p, heapBase, n, 64, 301)
	hAddr := make([]uint64, n)
	hVal := make([]float64, n)
	for i := range hAddr {
		hAddr[i] = hNodes.alloc()
		hVal[i] = float64(i%1009+1) * 0.5
		p.SetWord(hAddr[i]+emValue, math.Float64bits(hVal[i]))
	}
	eNodes := newHeap(p, hNodes.end()+0x10000, n, emRecSize, 302)
	eAddr := make([]uint64, n)
	for i := range eAddr {
		eAddr[i] = eNodes.alloc()
	}
	pick := eNodes.order // deterministic pseudo-random dep selection
	const steps = 2
	eVal := make([]float64, n)
	for i := 0; i < n; i++ {
		a := eAddr[i]
		if i+1 < n {
			p.SetWord(a+emNext, eAddr[i+1])
		}
		eVal[i] = float64(3 * i)
		p.SetWord(a+emValue, math.Float64bits(eVal[i]))
		for d := 0; d < 4; d++ {
			j := (pick[i] + d*2671) % n
			c := float64(d+1) * 0.25
			p.SetWord(a+emDep0+uint64(d)*8, hAddr[j])
			p.SetWord(a+emCoeff0+uint64(d)*8, math.Float64bits(c))
		}
	}
	var sum float64
	for t := 0; t < steps; t++ {
		for i := 0; i < n; i++ {
			v := eVal[i]
			for d := 0; d < 4; d++ {
				j := (pick[i] + d*2671) % n
				c := float64(d+1) * 0.25
				// The explicit float64 conversion forbids fused
				// multiply-add contraction, keeping the Go-side expected
				// value bit-identical to the IR's fmul+fsub sequence.
				v = v - float64(c*hVal[j])
			}
			eVal[i] = v
			sum = sum + v
		}
	}
	want := math.Float64bits(sum)

	fb := ir.NewFunc(p, "main")
	e := fb.Block("entry")
	e.MovI(15, 0)          // time step
	e.SetF(10, ir.RegZero) // checksum accumulator f10 = 0.0
	outer := fb.Block("outer")
	outer.MovI(14, int64(eAddr[0])) // e
	loop := fb.Block("loop")
	loop.Nop()               // trigger padding
	loop.FLd(3, 14, emValue) // e->value
	loop.Ld(16, 14, emDep0)  // dep pointers
	loop.Ld(17, 14, emDep0+8)
	loop.Ld(18, 14, emDep0+16)
	loop.Ld(19, 14, emDep0+24)
	loop.FLd(4, 16, emValue) // dep values (delinquent)
	loop.FLd(5, 17, emValue)
	loop.FLd(6, 18, emValue)
	loop.FLd(7, 19, emValue)
	loop.FLd(20, 14, emCoeff0) // coefficients (same record)
	loop.FLd(21, 14, emCoeff0+8)
	loop.FLd(22, 14, emCoeff0+16)
	loop.FLd(23, 14, emCoeff0+24)
	loop.FMul(24, 20, 4)
	loop.FSub(3, 3, 24)
	loop.FMul(25, 21, 5)
	loop.FSub(3, 3, 25)
	loop.FMul(26, 22, 6)
	loop.FSub(3, 3, 26)
	loop.FMul(27, 23, 7)
	loop.FSub(3, 3, 27)
	loop.FSt(14, emValue, 3) // e->value updated
	loop.FAdd(10, 10, 3)     // checksum += value
	loop.Ld(14, 14, emNext)  // e = e->next
	loop.CmpI(ir.CondNE, 6, 7, 14, 0)
	loop.On(6).Br("loop")
	latch := fb.Block("latch")
	latch.AddI(15, 15, 1)
	latch.CmpI(ir.CondLT, 8, 9, 15, 2)
	latch.On(8).Br("outer")
	done := fb.Block("done")
	done.GetF(20, 10)
	epilogue(done, 20)
	return p, want
}
