package workloads

import "ssp/internal/ir"

// Health reproduces the Olden health kernel: a hierarchy of villages, each
// owning a linked list of patients that is walked every simulation step. The
// patient-list walk lives in its own procedure, so the slice of the
// delinquent loads (patient->next, patient->time) must cross the call
// boundary — health contributes one interprocedural slice in Table 2.
//
//	for each village v (pointer array, shuffled records):
//	    total += sum_list(v->patients)
func Health() Spec {
	return Spec{
		Name:        "health",
		Description: "hierarchical health-care simulation: per-village patient-list walks",
		Scale:       12000,
		TestScale:   500,
		Build:       buildHealth,
	}
}

const (
	vilPatients = 0
	vilSeed     = 8
	patNext     = 0
	patTime     = 8
)

func buildHealth(nVillages int) (*ir.Program, uint64) {
	p := ir.NewProgram("main")
	// Patients: about 3 per village on average, shuffled heap.
	maxPatients := nVillages * 3
	pats := newHeap(p, heapBase, maxPatients, 64, 401)
	vils := newHeap(p, pats.base+uint64(maxPatients)*64+0x10000, nVillages, 64, 402)
	vAddr := make([]uint64, nVillages)
	var want uint64
	pi := 0
	for v := 0; v < nVillages; v++ {
		vAddr[v] = vils.alloc()
		count := 1 + (v*7)%5 // 1..5 patients
		var head uint64
		for k := 0; k < count && pi < maxPatients; k++ {
			a := pats.alloc()
			t := uint64(v*31 + k*17 + 5)
			p.SetWord(a+patTime, t)
			p.SetWord(a+patNext, head)
			head = a
			want += t
			pi++
		}
		p.SetWord(vAddr[v]+vilPatients, head)
	}
	// Village pointer array, visited in index order.
	vlistBase := vils.end() + 0x10000
	for v := 0; v < nVillages; v++ {
		p.SetWord(vlistBase+uint64(v)*8, vAddr[v])
	}

	// sum_list(head) -> r8: the callee holding the delinquent walk.
	sf := ir.NewFunc(p, "sum_list")
	sf.F.NumFormals = 1
	se := sf.Block("entry")
	se.MovI(ir.RegRet, 0)
	se.CmpI(ir.CondEQ, 6, 7, ir.RegArg0, 0)
	se.On(6).Br("out")
	sl := sf.Block("walk")
	sl.Ld(40, ir.RegArg0, patTime) // patient->time (delinquent)
	sl.Add(ir.RegRet, ir.RegRet, 40)
	sl.Ld(ir.RegArg0, ir.RegArg0, patNext) // patient = patient->next (delinquent)
	sl.CmpI(ir.CondNE, 6, 7, ir.RegArg0, 0)
	sl.On(6).Br("walk")
	so := sf.Block("out")
	so.Ret(0)

	fb := ir.NewFunc(p, "main")
	e := fb.Block("entry")
	e.MovI(14, int64(vlistBase))
	e.MovI(15, int64(vlistBase+uint64(nVillages)*8))
	e.MovI(20, 0)
	loop := fb.Block("loop")
	loop.Nop()                           // trigger padding
	loop.Ld(16, 14, 0)                   // v = vlist[i]
	loop.Ld(ir.RegArg0, 16, vilPatients) // head = v->patients (delinquent)
	loop.Call("sum_list")
	loop.Add(20, 20, ir.RegRet)
	loop.AddI(14, 14, 8)
	loop.Cmp(ir.CondLT, 6, 7, 14, 15)
	loop.On(6).Br("loop")
	done := fb.Block("done")
	epilogue(done, 20)
	return p, want
}
