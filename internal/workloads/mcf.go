package workloads

import "ssp/internal/ir"

// Mcf reproduces the primal_bea_mpp pricing kernel of SPEC CPU2000 mcf — the
// paper's running example (Figure 3). A strided scan walks the arc array;
// for each arc the reduced cost needs the potentials of its tail and head
// nodes, both reached through pointers into a shuffled node heap:
//
//	do { t = arc;
//	     red = t->cost - t->tail->potential + t->head->potential;
//	     if (red < best) best = red, basket++;
//	     arc = t + nr_group;
//	} while (arc < K);
//
// The delinquent loads are the two potential dereferences; the recurrence is
// the pure-arithmetic arc induction, which is what makes chaining SP able to
// run arbitrarily far ahead (§3.2.1).
func Mcf() Spec {
	return Spec{
		Name:        "mcf",
		Description: "combinatorial optimization: arc pricing over pointer-linked network nodes",
		Scale:       60000,
		TestScale:   1500,
		Build:       buildMcf,
	}
}

const (
	arcTail = 8
	arcHead = 16
	arcCost = 24
	nodePot = 16
)

func buildMcf(n int) (*ir.Program, uint64) {
	p := ir.NewProgram("main")
	nodes := newHeap(p, heapBase, n, 64, 101)
	nodeAddr := make([]uint64, n)
	for i := range nodeAddr {
		nodeAddr[i] = nodes.alloc()
		p.SetWord(nodeAddr[i]+nodePot, uint64(i*7+3))
	}
	arcBase := nodes.end() + 0x10000
	arcs := newHeap(p, arcBase, n, 64, 102)
	// Arcs are scanned in address order (stride = record size), matching
	// primal_bea_mpp's nr_group stride; the pointers they hold are random.
	tailOf := make([]int, n)
	headOf := make([]int, n)
	costOf := make([]int64, n)
	rng := arcs.order // reuse the shuffled order as a cheap random source
	for i := 0; i < n; i++ {
		a := arcBase + uint64(i)*64
		tailOf[i] = rng[i]
		headOf[i] = rng[(i+n/2)%n]
		costOf[i] = int64(i%97) * 5
		p.SetWord(a+arcTail, nodeAddr[tailOf[i]])
		p.SetWord(a+arcHead, nodeAddr[headOf[i]])
		p.SetWord(a+arcCost, uint64(costOf[i]))
	}
	// Expected: sum of reduced costs (mod 2^64) plus count of negatives.
	var sum uint64
	var negs uint64
	for i := 0; i < n; i++ {
		red := uint64(costOf[i]) - uint64(tailOf[i]*7+3) + uint64(headOf[i]*7+3)
		sum += red
		if int64(red) < 0 {
			negs++
		}
	}
	want := sum + negs

	fb := ir.NewFunc(p, "main")
	e := fb.Block("entry")
	e.MovI(14, int64(arcBase))              // arc
	e.MovI(15, int64(arcBase+uint64(n)*64)) // K
	e.MovI(20, 0)                           // sum
	e.MovI(21, 0)                           // negative count ("basket size")
	loop := fb.Block("loop")
	loop.Nop()               // trigger padding (Figure 7)
	loop.Mov(16, 14)         // A: t = arc
	loop.Ld(17, 16, arcTail) // B: t->tail
	loop.Ld(22, 16, arcHead) //    t->head
	loop.Ld(18, 17, nodePot) // C: tail->potential (delinquent)
	loop.Ld(23, 22, nodePot) //    head->potential (delinquent)
	loop.Ld(24, 16, arcCost) //    t->cost
	loop.Sub(25, 24, 18)     // cost - tail.pot
	loop.Add(25, 25, 23)     // + head.pot
	loop.Add(20, 20, 25)     // sum += red
	loop.CmpI(ir.CondLT, 8, 9, 25, 0)
	loop.On(8).AddI(21, 21, 1) // basket++
	loop.AddI(14, 16, 64)      // D: arc = t + nr_group
	loop.Cmp(ir.CondLT, 6, 7, 14, 15)
	loop.On(6).Br("loop") // E
	done := fb.Block("done")
	done.Add(20, 20, 21)
	epilogue(done, 20)
	return p, want
}
