package workloads

import "ssp/internal/ir"

// Mst reproduces the Olden mst hot path: Bellman-Ford relaxation where every
// edge weight comes from a hash-table lookup. HashLookup hashes the key,
// loads the bucket head, and walks the collision chain comparing keys — the
// bucket and chain loads are the delinquent ones, and since they live in the
// callee, mst contributes an interprocedural slice (Table 2).
//
//	for i in 0..n: sum += HashLookup(table, key(i))
//
// key(i) is a linear-congruential sequence, so the address chain's root is
// computable arithmetic — prefetchable far ahead.
func Mst() Spec {
	return Spec{
		Name:        "mst",
		Description: "minimum spanning tree: hash-table edge-weight lookups",
		Scale:       60000,
		TestScale:   1200,
		Build:       buildMst,
	}
}

const (
	hnNext = 0
	hnKey  = 8
	hnVal  = 16
	// hashMult is Knuth's multiplicative constant.
	hashMult = 2654435761
)

func buildMst(n int) (*ir.Program, uint64) {
	p := ir.NewProgram("main")
	// Buckets: n/3 rounded up to a power of two.
	buckets := 1
	for buckets < n/3 {
		buckets *= 2
	}
	bucketBase := heapBase
	nodes := newHeap(p, bucketBase+uint64(buckets)*8+0x10000, n, 64, 501)
	// Insert keys 0..n-1 with values derived from the key.
	headOf := make([]uint64, buckets)
	valOf := make([]uint64, n)
	for k := 0; k < n; k++ {
		a := nodes.alloc()
		valOf[k] = uint64(k*k%7919 + 1)
		idx := (uint64(k) * hashMult) & uint64(buckets-1)
		p.SetWord(a+hnKey, uint64(k))
		p.SetWord(a+hnVal, valOf[k])
		p.SetWord(a+hnNext, headOf[idx])
		headOf[idx] = a
		p.SetWord(bucketBase+idx*8, a)
	}
	// Lookup sequence: key(i) = (i*a + c) mod n — all present.
	var want uint64
	const la, lc = 48271, 11
	for i := 0; i < n; i++ {
		k := (i*la + lc) % n
		want += valOf[k]
	}

	// HashLookup(r32 = bucketBase, r33 = key) -> r8.
	hf := ir.NewFunc(p, "hash_lookup")
	hf.F.NumFormals = 2
	he := hf.Block("entry")
	he.MulI(40, ir.RegArg0+1, hashMult)
	he.AndI(40, 40, int64(buckets-1))
	he.ShlI(40, 40, 3)
	he.Add(40, 40, ir.RegArg0)
	he.Ld(41, 40, 0) // bucket head (delinquent)
	walk := hf.Block("walk")
	walk.Ld(42, 41, hnKey) // chain key (delinquent)
	walk.Cmp(ir.CondEQ, 6, 7, 42, ir.RegArg0+1)
	walk.On(6).Br("found")
	next := hf.Block("next")
	next.Ld(41, 41, hnNext) // chain next (delinquent)
	next.Br("walk")
	found := hf.Block("found")
	found.Ld(ir.RegRet, 41, hnVal)
	found.Ret(0)

	fb := ir.NewFunc(p, "main")
	e := fb.Block("entry")
	e.MovI(14, 0)        // i -> key via LCG
	e.MovI(15, int64(n)) // limit
	e.MovI(16, lc)       // key accumulator: key = (key + la) mod n (incremental LCG)
	e.MovI(20, 0)
	loop := fb.Block("loop")
	loop.Nop() // trigger padding
	loop.MovI(ir.RegArg0, int64(bucketBase))
	loop.Mov(ir.RegArg0+1, 16)
	loop.Call("hash_lookup")
	loop.Add(20, 20, ir.RegRet)
	// key = (key + la) mod n, branch-free: key += la; if key >= n, key -= n.
	loop.AddI(16, 16, la%int64(n))
	loop.CmpI(ir.CondGE, 8, 9, 16, int64(n))
	loop.On(8).AddI(16, 16, -int64(n))
	loop.AddI(14, 14, 1)
	loop.Cmp(ir.CondLT, 6, 7, 14, 15)
	loop.On(6).Br("loop")
	done := fb.Block("done")
	epilogue(done, 20)
	return p, want
}
