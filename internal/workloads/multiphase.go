package workloads

import "ssp/internal/ir"

// This file holds the multi-phase benchmark variants: kernels with two or
// more independent hot loops, each with its own delinquent loads. The paper's
// full benchmarks have several hot routines, which is what yields the 2-8
// p-slices per binary of Table 2; the single-loop kernels in this package
// isolate one hot region each and therefore produce one combined slice. The
// *.multi variants restore the multi-region shape: the adaptation tool must
// rank delinquent loads per region, build one independent slice per hot
// loop, and place a separate trigger in each.
//
// Every phase loop is shaped so its backward slice lands inside the paper's
// Table 2 envelope (7-15 instructions, 1-4 live-ins), and every phase keeps
// the padding nop that trigger embedding converts into chk.c.

// McfMulti is the two-phase mcf variant: the arc-pricing scan of Mcf (phase
// 1) followed by a node-potential refresh pass (phase 2) that walks a pointer
// table through two levels of randomly placed records — the shape of mcf's
// refresh_potential, its second hot routine in the full benchmark.
func McfMulti() Spec {
	return Spec{
		Name:        "mcf.multi",
		Description: "two-phase mcf: arc pricing scan plus node-potential refresh walk",
		Scale:       30000,
		TestScale:   1100,
		MinSlices:   2,
		Build:       buildMcfMulti,
	}
}

func buildMcfMulti(n int) (*ir.Program, uint64) {
	p := ir.NewProgram("main")

	// Phase 1 data: the Mcf arc/node layout on its own heaps.
	nodes := newHeap(p, heapBase, n, 64, 111)
	nodeAddr := make([]uint64, n)
	for i := range nodeAddr {
		nodeAddr[i] = nodes.alloc()
		p.SetWord(nodeAddr[i]+nodePot, uint64(i*7+3))
	}
	arcBase := nodes.end() + 0x10000
	arcs := newHeap(p, arcBase, n, 64, 112)
	rng := arcs.order
	var want uint64
	for i := 0; i < n; i++ {
		a := arcBase + uint64(i)*64
		tail, head := rng[i], rng[(i+n/2)%n]
		cost := int64(i%97) * 5
		p.SetWord(a+arcTail, nodeAddr[tail])
		p.SetWord(a+arcHead, nodeAddr[head])
		p.SetWord(a+arcCost, uint64(cost))
		red := uint64(cost) - uint64(tail*7+3) + uint64(head*7+3)
		want += red
		if int64(red) < 0 {
			want++
		}
	}

	// Phase 2 data: a sequential pointer table into a shuffled record heap;
	// each record points into a second shuffled heap holding the potentials.
	tblBase := arcBase + uint64(n)*64 + 0x10000
	recs := newHeap(p, tblBase+uint64(n)*8+0x10000, n, 64, 113)
	recAddr := make([]uint64, n)
	for i := range recAddr {
		recAddr[i] = recs.alloc()
	}
	pots := newHeap(p, recs.end()+0x10000, n, 64, 114)
	potAddr := make([]uint64, n)
	for i := range potAddr {
		potAddr[i] = pots.alloc()
		p.SetWord(potAddr[i]+16, uint64(i*11+5))
	}
	for i := 0; i < n; i++ {
		p.SetWord(tblBase+uint64(i)*8, recAddr[recs.order[i]])
		p.SetWord(recAddr[i]+8, potAddr[(i*13+7)%n])
	}
	for i := 0; i < n; i++ {
		j := (recs.order[i]*13 + 7) % n
		want += uint64(j*11 + 5)
	}

	fb := ir.NewFunc(p, "main")
	e := fb.Block("entry")
	e.MovI(14, int64(arcBase))              // arc cursor
	e.MovI(15, int64(arcBase+uint64(n)*64)) // limit
	e.MovI(20, 0)                           // checksum
	e.MovI(21, 0)                           // basket count
	l1 := fb.Block("price")
	l1.Nop()               // trigger padding
	l1.Mov(16, 14)         // t = arc
	l1.Ld(17, 16, arcTail) // t->tail
	l1.Ld(22, 16, arcHead) // t->head
	l1.Ld(18, 17, nodePot) // tail->potential (delinquent)
	l1.Ld(23, 22, nodePot) // head->potential (delinquent)
	l1.Ld(24, 16, arcCost) // t->cost
	l1.Sub(25, 24, 18)
	l1.Add(25, 25, 23)
	l1.Add(20, 20, 25)
	l1.CmpI(ir.CondLT, 8, 9, 25, 0)
	l1.On(8).AddI(21, 21, 1)
	l1.AddI(14, 16, 64)
	l1.Cmp(ir.CondLT, 6, 7, 14, 15)
	l1.On(6).Br("price")
	mid := fb.Block("mid")
	mid.Add(20, 20, 21)
	mid.MovI(14, int64(tblBase))
	mid.MovI(15, int64(tblBase+uint64(n)*8))
	l2 := fb.Block("refresh")
	l2.Nop()          // trigger padding
	l2.Mov(16, 14)    // cursor copy (arc-style induction)
	l2.Ld(17, 16, 0)  // rec = tbl[i]
	l2.Ld(18, 17, 8)  // rec->node (delinquent)
	l2.Ld(19, 18, 16) // node->potential (delinquent)
	l2.Add(20, 20, 19)
	l2.AddI(14, 16, 8)
	l2.Cmp(ir.CondLT, 6, 7, 14, 15)
	l2.On(6).Br("refresh")
	done := fb.Block("done")
	epilogue(done, 20)
	return p, want
}

// Em3dMulti is the two-phase em3d variant: an E-node list gather over two
// randomly placed dependency values (phase 1, the compute_nodes shape),
// then an H-node refresh sweep that strides the H heap and dereferences each
// node's peer pointer twice (phase 2, the shape of the other direction of
// the bipartite update). Integer arithmetic keeps the checksum analytic.
func Em3dMulti() Spec {
	return Spec{
		Name:        "em3d.multi",
		Description: "two-phase em3d: E-list dependency gather plus H-heap peer refresh",
		Scale:       30000,
		TestScale:   1100,
		MinSlices:   2,
		Build:       buildEm3dMulti,
	}
}

func buildEm3dMulti(n int) (*ir.Program, uint64) {
	p := ir.NewProgram("main")
	const (
		eNext = 0
		eDep0 = 8
		eDep1 = 16
		hVal  = 8
		hPeer = 24
	)
	// H nodes: shuffled, each holds a value and a peer pointer.
	hNodes := newHeap(p, heapBase, n, 64, 211)
	hAddr := make([]uint64, n)
	for i := range hAddr {
		hAddr[i] = hNodes.alloc()
		p.SetWord(hAddr[i]+hVal, uint64(i*9+2))
	}
	for i := 0; i < n; i++ {
		p.SetWord(hAddr[i]+hPeer, hAddr[(i*17+3)%n])
	}
	// E nodes: a shuffled linked list, two dependency pointers each.
	eNodes := newHeap(p, hNodes.end()+0x10000, n, 64, 212)
	eAddr := make([]uint64, n)
	for i := range eAddr {
		eAddr[i] = eNodes.alloc()
	}
	pick := eNodes.order
	var want uint64
	for i := 0; i < n; i++ {
		a := eAddr[i]
		if i+1 < n {
			p.SetWord(a+eNext, eAddr[i+1])
		}
		d0 := pick[i]
		d1 := (pick[i] + 2671) % n
		p.SetWord(a+eDep0, hAddr[d0])
		p.SetWord(a+eDep1, hAddr[d1])
		want += uint64(d0*9+2) + uint64(d1*9+2)
	}
	// Phase 2 expectation: for the node at heap slot j (address order), the
	// record is insertion i with order[i] == j; value fetched is
	// peer(peer(i))'s value.
	inv := make([]int, n)
	for i, j := range hNodes.order {
		inv[j] = i
	}
	peer := func(i int) int { return (i*17 + 3) % n }
	for j := 0; j < n; j++ {
		want += uint64(peer(peer(inv[j]))*9 + 2)
	}

	fb := ir.NewFunc(p, "main")
	e := fb.Block("entry")
	e.MovI(14, int64(eAddr[0])) // e-list cursor
	e.MovI(20, 0)               // checksum
	l1 := fb.Block("gather")
	l1.Nop()             // trigger padding
	l1.Ld(16, 14, eDep0) // dep pointers
	l1.Ld(17, 14, eDep1)
	l1.Ld(18, 16, hVal) // dep values (delinquent)
	l1.Ld(19, 17, hVal)
	l1.Add(20, 20, 18)
	l1.Add(20, 20, 19)
	l1.Ld(14, 14, eNext) // e = e->next
	l1.CmpI(ir.CondNE, 6, 7, 14, 0)
	l1.On(6).Br("gather")
	mid := fb.Block("mid")
	mid.MovI(14, int64(heapBase))
	mid.MovI(15, int64(heapBase+uint64(n)*64))
	l2 := fb.Block("refresh")
	l2.Nop()             // trigger padding
	l2.Mov(16, 14)       // h cursor copy
	l2.Ld(17, 16, hPeer) // h->peer (delinquent)
	l2.Ld(18, 17, hPeer) // peer->peer (delinquent)
	l2.Ld(19, 18, hVal)  // ->value (delinquent)
	l2.Add(20, 20, 19)
	l2.AddI(14, 16, 64)
	l2.Cmp(ir.CondLT, 6, 7, 14, 15)
	l2.On(6).Br("refresh")
	done := fb.Block("done")
	epilogue(done, 20)
	return p, want
}

// MstMulti is the two-phase mst variant: the hash-lookup relaxation loop of
// Mst (phase 1, interprocedural — the delinquent loads live in the callee)
// followed by an intra-procedural mate sweep over the node heap (phase 2):
// a strided scan that dereferences each node's mate pointer chain, the shape
// of mst's blue-rule pass over the vertex list.
func MstMulti() Spec {
	return Spec{
		Name:        "mst.multi",
		Description: "two-phase mst: interprocedural hash lookups plus mate-chain sweep",
		Scale:       52000,
		TestScale:   1000,
		MinSlices:   2,
		Build:       buildMstMulti,
	}
}

func buildMstMulti(n int) (*ir.Program, uint64) {
	p := ir.NewProgram("main")
	const (
		hnMate  = 24
		hnMate2 = 32
	)
	buckets := 1
	for buckets < n/3 {
		buckets *= 2
	}
	bucketBase := heapBase
	nodes := newHeap(p, bucketBase+uint64(buckets)*8+0x10000, n, 64, 511)
	nodeBase := bucketBase + uint64(buckets)*8 + 0x10000
	headOf := make([]uint64, buckets)
	valOf := make([]uint64, n)
	addrOf := make([]uint64, n)
	for k := 0; k < n; k++ {
		a := nodes.alloc()
		addrOf[k] = a
		valOf[k] = uint64(k*k%7919 + 1)
		idx := (uint64(k) * hashMult) & uint64(buckets-1)
		p.SetWord(a+hnKey, uint64(k))
		p.SetWord(a+hnVal, valOf[k])
		p.SetWord(a+hnNext, headOf[idx])
		headOf[idx] = a
		p.SetWord(bucketBase+idx*8, a)
	}
	for k := 0; k < n; k++ {
		p.SetWord(addrOf[k]+hnMate, addrOf[(k+7)%n])
		p.SetWord(addrOf[k]+hnMate2, addrOf[(k*5+11)%n])
	}
	// Phase 1 expectation: LCG lookups, as in Mst.
	var want uint64
	const la, lc = 48271, 11
	for i := 0; i < n; i++ {
		k := (i*la + lc) % n
		want += valOf[k]
	}
	// Phase 2 expectation: the node at heap slot j is insertion k with
	// order[k] == j; the sweep fetches mate2(mate(k))'s value.
	inv := make([]int, n)
	for k, j := range nodes.order {
		inv[j] = k
	}
	for j := 0; j < n; j++ {
		m := (inv[j] + 7) % n
		want += valOf[(m*5+11)%n]
	}

	hf := ir.NewFunc(p, "hash_lookup")
	hf.F.NumFormals = 2
	he := hf.Block("entry")
	he.MulI(40, ir.RegArg0+1, hashMult)
	he.AndI(40, 40, int64(buckets-1))
	he.ShlI(40, 40, 3)
	he.Add(40, 40, ir.RegArg0)
	he.Ld(41, 40, 0) // bucket head (delinquent)
	walk := hf.Block("walk")
	walk.Ld(42, 41, hnKey) // chain key (delinquent)
	walk.Cmp(ir.CondEQ, 6, 7, 42, ir.RegArg0+1)
	walk.On(6).Br("found")
	next := hf.Block("next")
	next.Ld(41, 41, hnNext) // chain next (delinquent)
	next.Br("walk")
	found := hf.Block("found")
	found.Ld(ir.RegRet, 41, hnVal)
	found.Ret(0)

	fb := ir.NewFunc(p, "main")
	e := fb.Block("entry")
	e.MovI(14, 0)
	e.MovI(15, int64(n))
	e.MovI(16, lc)
	e.MovI(20, 0)
	l1 := fb.Block("lookup")
	l1.Nop() // trigger padding
	l1.MovI(ir.RegArg0, int64(bucketBase))
	l1.Mov(ir.RegArg0+1, 16)
	l1.Call("hash_lookup")
	l1.Add(20, 20, ir.RegRet)
	l1.AddI(16, 16, la%int64(n))
	l1.CmpI(ir.CondGE, 8, 9, 16, int64(n))
	l1.On(8).AddI(16, 16, -int64(n))
	l1.AddI(14, 14, 1)
	l1.Cmp(ir.CondLT, 6, 7, 14, 15)
	l1.On(6).Br("lookup")
	mid := fb.Block("mid")
	mid.MovI(14, int64(nodeBase))
	mid.MovI(15, int64(nodeBase+uint64(n)*64))
	l2 := fb.Block("sweep")
	l2.Nop()              // trigger padding
	l2.Mov(22, 14)        // node cursor copy
	l2.Ld(17, 22, hnMate) // node->mate (delinquent)
	l2.Ld(18, 17, hnMate2)
	l2.Ld(19, 18, hnVal)
	l2.Add(20, 20, 19)
	l2.AddI(14, 22, 64)
	l2.Cmp(ir.CondLT, 6, 7, 14, 15)
	l2.On(6).Br("sweep")
	done := fb.Block("done")
	epilogue(done, 20)
	return p, want
}
