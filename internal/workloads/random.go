package workloads

import (
	"fmt"
	"math/rand"

	"ssp/internal/ir"
)

// RandomProgram builds a seeded, always-terminating, pointer-chasing
// microbenchmark with a randomized CFG: an outer loop whose cursor strictly
// increases (so it cannot diverge), a pointer chase of random depth over a
// shuffled record heap, a random ALU mix over two accumulators, and —
// seed-dependent — branch diamonds, bounded inner loops, predicated stores to
// a private region, and calls to a leaf function that uses a disjoint
// register range. Programs avoid the SSP-reserved scratch registers
// (ssp.ScratchGR, p62/p63) so they are always adaptable, and every program
// stores its checksum to ResultAddr and halts, like the named workloads.
//
// The generator feeds all three layers of internal/check: the same seed
// always yields the same program, so any violation is reproducible from the
// seed alone.
func RandomProgram(seed int64) *ir.Program {
	r := rand.New(rand.NewSource(seed))
	n := 96 + r.Intn(160)
	p := ir.NewProgram("main")

	// Data: a pointer table into a shuffled record heap, two levels deep.
	tblBase := heapBase
	recBase := tblBase + uint64(n)*8 + 0x10000
	perm := r.Perm(n)
	for i := 0; i < n; i++ {
		rec := recBase + uint64(perm[i])*64
		p.SetWord(tblBase+uint64(i)*8, rec)
		p.SetWord(rec, recBase+uint64(perm[(i+11)%n])*64) // next pointer
		p.SetWord(rec+8, uint64(r.Intn(1<<30)))
		p.SetWord(rec+16, uint64(r.Intn(1<<30)))
	}

	withCall := r.Intn(3) == 0
	if withCall {
		// Leaf callee on a register range (r40+) disjoint from the caller's
		// live set, so the call clobbers nothing the loop depends on.
		lf := ir.NewFunc(p, "leaf")
		lb := lf.Block("entry")
		lb.Ld(40, ir.RegArg0, 8)
		lb.Ld(41, ir.RegArg0, 16)
		lb.Add(ir.RegRet, 40, 41)
		if r.Intn(2) == 0 {
			lb.XorI(ir.RegRet, ir.RegRet, int64(1+r.Intn(1<<12)))
		}
		lb.Ret(0)
	}

	fb := ir.NewFunc(p, "main")
	e := fb.Block("entry")
	e.MovI(14, int64(tblBase))             // cursor
	e.MovI(15, int64(tblBase+uint64(n)*8)) // end
	e.MovI(20, 0)                          // accumulator A
	e.MovI(21, int64(r.Intn(1<<16)))       // accumulator B
	e.MovI(27, 0x8000)                     // private spill region

	bb := fb.Block("loop")
	bb.Nop() // trigger padding
	bb.Ld(16, 14, 0)
	cur := ir.Reg(16)
	for d, depth := 0, 1+r.Intn(3); d < depth; d++ {
		next := ir.Reg(22 + d)
		bb.Ld(next, cur, 0) // chase
		cur = next
	}
	bb.Ld(17, cur, 8) // the likely-delinquent value load
	mixALU(r, bb)

	// Seed-dependent CFG features inside the body.
	for k, diamonds := 0, r.Intn(3); k < diamonds; k++ {
		thenL := fmt.Sprintf("then%d", k)
		joinL := fmt.Sprintf("join%d", k)
		bb.CmpI(ir.CondLT, 10, 11, 17, int64(r.Intn(1<<29)))
		bb.On(10).Br(thenL)
		els := fb.Block(fmt.Sprintf("else%d", k))
		mixALU(r, els)
		els.Br(joinL)
		then := fb.Block(thenL)
		mixALU(r, then) // falls through to the join
		bb = fb.Block(joinL)
	}
	if r.Intn(3) == 0 {
		// Bounded inner loop: the trip counter strictly decreases.
		bb.MovI(25, int64(2+r.Intn(5)))
		inner := fb.Block("inner")
		inner.Add(21, 21, 20)
		inner.XorI(20, 20, int64(1+r.Intn(1<<12)))
		inner.AddI(25, 25, -1)
		inner.CmpI(ir.CondGT, 8, 9, 25, 0)
		inner.On(8).Br("inner")
		bb = fb.Block("innerdone")
	}
	if withCall {
		bb.Mov(ir.RegArg0, cur)
		bb.Call("leaf")
		bb.Add(20, 20, ir.RegRet)
	}
	switch r.Intn(3) {
	case 0:
		bb.St(27, 0, 20)
	case 1:
		bb.CmpI(ir.CondLT, 12, 13, 20, int64(r.Intn(1<<29)))
		bb.On(12).St(27, 8, 21)
	}

	bb.AddI(14, 14, 8)
	bb.Cmp(ir.CondLT, 6, 7, 14, 15)
	bb.On(6).Br("loop")

	// Seed-dependent second hot phase: a strided two-hop walk over its own
	// shuffled heap, so a quarter of the seed space exercises the multi-slice
	// portfolio path (two hot regions, two triggers) in every differential
	// sweep. Drawn after every other decision so the other three quarters of
	// the seed space build byte-identical programs to the single-phase
	// generator.
	if r.Intn(4) == 0 {
		p2Base := recBase + uint64(n)*64 + 0x10000
		heap2 := p2Base + uint64(n)*8 + 0x10000
		perm2 := r.Perm(n)
		for i := 0; i < n; i++ {
			rec := heap2 + uint64(perm2[i])*64
			p.SetWord(p2Base+uint64(i)*8, rec)
			p.SetWord(rec+8, heap2+uint64(perm2[(i+17)%n])*64)
			p.SetWord(rec+16, uint64(r.Intn(1<<30)))
		}
		mid := fb.Block("phase2")
		mid.MovI(14, int64(p2Base))
		mid.MovI(15, int64(p2Base+uint64(n)*8))
		l2 := fb.Block("loop2")
		l2.Nop() // trigger padding
		l2.Ld(16, 14, 0)
		l2.Ld(17, 16, 8)  // mate pointer (delinquent)
		l2.Ld(18, 17, 16) // mate value (delinquent)
		l2.Add(20, 20, 18)
		l2.AddI(14, 14, 8)
		l2.Cmp(ir.CondLT, 6, 7, 14, 15)
		l2.On(6).Br("loop2")
	}

	done := fb.Block("done")
	done.Add(20, 20, 21)
	epilogue(done, 20)
	return p
}

// RandomMulti builds a seeded multi-phase pointer-chasing benchmark with an
// analytic checksum: `phases` sequential hot loops, each walking its own
// pointer table into its own shuffled record heap with a seed-dependent chase
// depth. Iteration counts decay by phase (phase k runs n/(k+1) trips), so
// phase 0 dominates the miss profile — the asymmetry the closed-loop tuner
// uses to surface a fresh region on re-profiling. Each phase's backward slice
// lands inside the paper's Table 2 envelope (7-15 instructions, 1 live-in).
func RandomMulti(seed int64, phases, n int) (*ir.Program, uint64) {
	r := rand.New(rand.NewSource(seed))
	p := ir.NewProgram("main")
	fb := ir.NewFunc(p, "main")
	e := fb.Block("entry")
	e.MovI(20, 0) // checksum accumulator, live across phases

	cursor := heapBase
	var want uint64
	prev := e
	for k := 0; k < phases; k++ {
		nk := n / (k + 1)
		if nk < 8 {
			nk = 8
		}
		depth := 2 + r.Intn(2) // chase hops; slice size = depth + 5
		salt := uint64(1 + r.Intn(1<<12))
		tbl := cursor
		cursor += uint64(nk)*8 + 0x10000
		heapK := cursor
		cursor += uint64(nk)*64 + 0x10000
		perm := r.Perm(nk)
		addr := func(j int) uint64 { return heapK + uint64(perm[j])*64 }
		for j := 0; j < nk; j++ {
			p.SetWord(tbl+uint64(j)*8, addr(j))
			p.SetWord(addr(j), addr((j+11)%nk))
			p.SetWord(addr(j)+8, uint64(j*13)+salt)
		}
		for j := 0; j < nk; j++ {
			want += uint64(((j+11*depth)%nk)*13) + salt
		}

		prev.MovI(14, int64(tbl))
		prev.MovI(15, int64(tbl+uint64(nk)*8))
		loopL := fmt.Sprintf("phase%d", k)
		l := fb.Block(loopL)
		l.Nop()         // trigger padding
		l.Ld(16, 14, 0) // rec = tbl[i]
		cur := ir.Reg(16)
		for d := 0; d < depth; d++ {
			next := ir.Reg(17 + d)
			l.Ld(next, cur, 0) // chase (delinquent)
			cur = next
		}
		l.Ld(21, cur, 8) // value (delinquent)
		l.Add(20, 20, 21)
		l.AddI(14, 14, 8)
		l.Cmp(ir.CondLT, 6, 7, 14, 15)
		l.On(6).Br(loopL)
		prev = fb.Block(fmt.Sprintf("mid%d", k))
	}
	epilogue(prev, 20)
	return p, want
}

// Rand2p promotes a two-phase RandomMulti instance to a first-class
// benchmark: two hot loops with independent delinquent chains, phase 0
// carrying twice the trips of phase 1.
func Rand2p() Spec {
	return Spec{
		Name:        "rand.2p",
		Description: "seeded two-phase pointer-table chase with decaying phase weights",
		Scale:       30000,
		TestScale:   1000,
		MinSlices:   2,
		Build: func(n int) (*ir.Program, uint64) {
			return RandomMulti(12001, 2, n)
		},
	}
}

// Rand3p is the three-phase member of the RandomMulti family.
func Rand3p() Spec {
	return Spec{
		Name:        "rand.3p",
		Description: "seeded three-phase pointer-table chase with decaying phase weights",
		Scale:       24000,
		TestScale:   900,
		MinSlices:   3,
		Build: func(n int) (*ir.Program, uint64) {
			return RandomMulti(12002, 3, n)
		},
	}
}

// mixALU emits a short random accumulator shuffle over r20/r21 fed by the
// loaded value in r17.
func mixALU(r *rand.Rand, bb *ir.BlockBuilder) {
	for k, ops := 0, 2+r.Intn(4); k < ops; k++ {
		switch r.Intn(5) {
		case 0:
			bb.Add(20, 20, 17)
		case 1:
			bb.XorI(21, 21, int64(r.Intn(1<<12)))
		case 2:
			bb.Add(21, 21, 20)
		case 3:
			bb.ShrI(19, 17, int64(1+r.Intn(4)))
			bb.Add(20, 20, 19)
		case 4:
			bb.CmpI(ir.CondLT, 8, 9, 17, int64(r.Intn(1<<29)))
			bb.On(8).AddI(20, 20, 3)
		}
	}
}
