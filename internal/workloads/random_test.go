package workloads

import (
	"testing"

	"ssp/internal/ir"
	"ssp/internal/sim"
)

// TestRandomProgramTerminates: every seeded program validates, links, and
// halts under functional interpretation — the generator may not emit
// divergent control flow.
func TestRandomProgramTerminates(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		p := RandomProgram(seed)
		if err := p.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		img, err := ir.Link(p)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if _, err := sim.Interpret(tinyConfig(), img, 50_000_000); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestRandomProgramDeterministic: the same seed always yields the same
// program — the property that makes a check violation reproducible from its
// seed alone.
func TestRandomProgramDeterministic(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		run := func() (int64, uint64) {
			img, err := ir.Link(RandomProgram(seed))
			if err != nil {
				t.Fatal(err)
			}
			r, err := sim.Interpret(tinyConfig(), img, 50_000_000)
			if err != nil {
				t.Fatal(err)
			}
			return r.Instrs, r.Mem.Load(ResultAddr)
		}
		i1, c1 := run()
		i2, c2 := run()
		if i1 != i2 || c1 != c2 {
			t.Fatalf("seed %d: (%d,%d) != (%d,%d)", seed, i1, c1, i2, c2)
		}
	}
}
