package workloads

import "ssp/internal/ir"

// Tree node layout (64-byte records on a shuffled heap).
const (
	treeLeft  = 0
	treeRight = 8
	treeVal   = 16
)

// TreeaddDF is Olden treeadd with a depth-first traversal: the paper's
// enhanced treeadd runs both DF and BF variants (§4.1). The traversal uses
// an explicit stack (the iterative form of the recursion); the delinquent
// loads are the child-pointer and value loads at randomly placed nodes. The
// traversal's recurrence passes through memory (the stack and the pointers),
// so the tool selects basic SP for it — matching Table 2's note that
// "treeadd.df uses basic SP".
func TreeaddDF() Spec {
	return Spec{
		Name:        "treeadd.df",
		Description: "depth-first sum of a balanced binary tree on a shuffled heap",
		Scale:       1 << 16,
		TestScale:   1 << 10,
		Build:       func(n int) (*ir.Program, uint64) { return buildTreeadd(n, false) },
	}
}

// TreeaddBF is the breadth-first variant: a FIFO queue of node pointers. The
// queue index advances arithmetically, so a chaining slice can prefetch the
// frontier well ahead of the main thread.
func TreeaddBF() Spec {
	return Spec{
		Name:        "treeadd.bf",
		Description: "breadth-first sum of a balanced binary tree on a shuffled heap",
		Scale:       1 << 16,
		TestScale:   1 << 10,
		Build:       func(n int) (*ir.Program, uint64) { return buildTreeadd(n, true) },
	}
}

// buildTreeadd allocates a balanced binary tree of at least n nodes and
// emits either the DF (explicit stack) or BF (queue) summation.
func buildTreeadd(n int, bf bool) (*ir.Program, uint64) {
	p := ir.NewProgram("main")
	// Round up to a full tree: 2^d - 1 >= n.
	total := 1
	for total < n {
		total = total*2 + 1
	}
	h := newHeap(p, heapBase, total, 64, 201)
	addr := make([]uint64, total)
	for i := range addr {
		addr[i] = h.alloc()
	}
	var want uint64
	for i := 0; i < total; i++ {
		v := uint64(i*13 + 1)
		want += v
		p.SetWord(addr[i]+treeVal, v)
		if 2*i+1 < total {
			p.SetWord(addr[i]+treeLeft, addr[2*i+1])
		}
		if 2*i+2 < total {
			p.SetWord(addr[i]+treeRight, addr[2*i+2])
		}
	}
	// Work area: DF stack or BF queue of node pointers, after the heap.
	workBase := h.end() + 0x10000

	fb := ir.NewFunc(p, "main")
	e := fb.Block("entry")
	e.MovI(14, int64(workBase)) // sp / queue tail
	e.MovI(20, 0)               // sum
	e.MovI(16, int64(addr[0]))  // root
	if bf {
		// queue[head..tail): head in r15, tail in r14.
		e.MovI(15, int64(workBase))
		e.St(14, 0, 16)
		e.AddI(14, 14, 8)
		loop := fb.Block("loop")
		loop.Nop()               // trigger padding
		loop.Ld(16, 15, 0)       // node = queue[head]   (delinquent chain root)
		loop.AddI(15, 15, 8)     // head++
		loop.Ld(17, 16, treeVal) // node->val (delinquent)
		loop.Add(20, 20, 17)
		loop.Ld(18, 16, treeLeft)  // node->left (delinquent)
		loop.Ld(19, 16, treeRight) // node->right
		loop.CmpI(ir.CondNE, 8, 9, 18, 0)
		loop.On(8).St(14, 0, 18)
		loop.On(8).AddI(14, 14, 8)
		loop.CmpI(ir.CondNE, 10, 11, 19, 0)
		loop.On(10).St(14, 0, 19)
		loop.On(10).AddI(14, 14, 8)
		loop.Cmp(ir.CondLT, 6, 7, 15, 14) // while head < tail
		loop.On(6).Br("loop")
	} else {
		// Explicit DF stack: push root, pop/visit/push children.
		e.St(14, 0, 16)
		e.AddI(14, 14, 8)
		e.MovI(15, int64(workBase)) // stack base
		loop := fb.Block("loop")
		loop.Nop()               // trigger padding
		loop.SubI(14, 14, 8)     // sp--
		loop.Ld(16, 14, 0)       // node = *sp
		loop.Ld(17, 16, treeVal) // node->val (delinquent)
		loop.Add(20, 20, 17)
		loop.Ld(18, 16, treeLeft)  // node->left (delinquent)
		loop.Ld(19, 16, treeRight) // node->right (delinquent)
		loop.CmpI(ir.CondNE, 8, 9, 18, 0)
		loop.On(8).St(14, 0, 18)
		loop.On(8).AddI(14, 14, 8)
		loop.CmpI(ir.CondNE, 10, 11, 19, 0)
		loop.On(10).St(14, 0, 19)
		loop.On(10).AddI(14, 14, 8)
		loop.Cmp(ir.CondLT, 6, 7, 15, 14) // while sp > base
		loop.On(6).Br("loop")
	}
	done := fb.Block("done")
	epilogue(done, 20)
	return p, want
}
