package workloads

import "ssp/internal/ir"

// Vpr reproduces the hot loop of SPEC CPU2000 vpr's placement phase:
// evaluating swap costs touches a block record through a pointer, reads its
// grid coordinates, and indexes the routing-cost grid — a three-level
// pointer/index chain per candidate. Candidates are chosen by an LCG (vpr
// uses my_irand), so the chain roots are arithmetic and chaining SP can run
// ahead:
//
//	for i in 0..n: j = lcg(j); b = blocks[j];
//	               cost += grid[b->y * W + b->x]
//
// The block count is rounded up to a power of two so the LCG reduction is a
// mask, as in table-driven placers.
func Vpr() Spec {
	return Spec{
		Name:        "vpr",
		Description: "FPGA placement: randomized block-position and grid-cost evaluation",
		Scale:       1 << 16,
		TestScale:   1 << 11,
		Build:       buildVpr,
	}
}

const (
	blkX = 0
	blkY = 8
)

func buildVpr(scale int) (*ir.Program, uint64) {
	n := 1
	for n < scale {
		n *= 2
	}
	p := ir.NewProgram("main")
	// Grid dimensions: W x W with W^2 >= n.
	w := 1
	for w*w < n {
		w *= 2
	}
	// Block pointer array (dense), block records (shuffled), cost grid.
	blkPtrBase := heapBase
	blocks := newHeap(p, blkPtrBase+uint64(n)*8+0x10000, n, 64, 601)
	gridBase := blocks.end() + 0x10000
	bx := make([]int, n)
	by := make([]int, n)
	for i := 0; i < n; i++ {
		a := blocks.alloc()
		p.SetWord(blkPtrBase+uint64(i)*8, a)
		bx[i] = blocks.order[i] % w
		by[i] = (blocks.order[i] * 31) % w
		p.SetWord(a+blkX, uint64(bx[i]))
		p.SetWord(a+blkY, uint64(by[i]))
	}
	gridVal := func(x, y int) uint64 { return uint64((x*3+y*7)%1021 + 1) }
	for i := 0; i < n; i++ {
		// Only cells actually read need backing values; others load 0.
		p.SetWord(gridBase+uint64(by[i]*w+bx[i])*8, gridVal(bx[i], by[i]))
	}
	// LCG over block indices: j = (j*la + lc) & (n-1).
	const la, lc = 16807, 7
	var want uint64
	j := 0
	for i := 0; i < n; i++ {
		j = (j*la + lc) & (n - 1)
		want += gridVal(bx[j], by[j])
	}

	fb := ir.NewFunc(p, "main")
	e := fb.Block("entry")
	e.MovI(14, 0)        // i
	e.MovI(15, int64(n)) // limit
	e.MovI(16, 0)        // j (LCG state)
	e.MovI(20, 0)        // cost accumulator
	e.MovI(21, int64(blkPtrBase))
	e.MovI(22, int64(gridBase))
	loop := fb.Block("loop")
	loop.Nop() // trigger padding
	loop.MulI(16, 16, la)
	loop.AddI(16, 16, lc)
	loop.AndI(16, 16, int64(n-1))
	loop.ShlI(17, 16, 3)
	loop.Add(17, 17, 21)
	loop.Ld(18, 17, 0)    // b = blocks[j] (pointer-array load)
	loop.Ld(19, 18, blkX) // b->x (delinquent)
	loop.Ld(23, 18, blkY) // b->y (delinquent)
	loop.MulI(23, 23, int64(w))
	loop.Add(23, 23, 19)
	loop.ShlI(23, 23, 3)
	loop.Add(23, 23, 22)
	loop.Ld(24, 23, 0) // grid cost (delinquent)
	loop.Add(20, 20, 24)
	loop.AddI(14, 14, 1)
	loop.Cmp(ir.CondLT, 6, 7, 14, 15)
	loop.On(6).Br("loop")
	done := fb.Block("done")
	epilogue(done, 20)
	return p, want
}
