// Package workloads provides the seven pointer-intensive benchmark kernels
// of §4.1, written directly in the IR: em3d, health, mst, treeadd.df,
// treeadd.bf (Olden) and mcf, vpr (SPEC CPU2000). Each kernel reproduces the
// memory-access shape that makes its namesake delinquent — pointer chains
// over shuffled heaps that defeat stride prefetching and stall in-order
// pipelines — while staying small enough to simulate at cycle level.
//
// Every program stores a checksum to ResultAddr and halts; Build returns the
// expected value so tests and experiments can verify that simulation (and
// SSP adaptation, which must not alter architectural state, §2) computed the
// right answer.
package workloads

import (
	"fmt"
	"math/rand"

	"ssp/internal/ir"
)

// ResultAddr is where every workload stores its final checksum.
const ResultAddr uint64 = 0x2000

// heapBase is where workload heaps start.
const heapBase uint64 = 0x100000

// Spec describes one benchmark kernel.
type Spec struct {
	// Name is the benchmark name as used in the paper's tables.
	Name string
	// Description summarizes the kernel.
	Description string
	// Scale is the element count used by the experiment drivers (sized so
	// the working set exceeds the Table 1 L3 capacity).
	Scale int
	// TestScale is a small element count for unit tests against the
	// scaled-down memory system.
	TestScale int
	// Build constructs the program at the given scale and returns it with
	// the expected checksum.
	Build func(scale int) (*ir.Program, uint64)
	// MinSlices is the number of independent p-slices the adaptation tool is
	// expected to build for this kernel (0 means 1). The single-hot-region
	// kernels leave it at zero; the multi-phase variants declare their phase
	// count so the Table 2 envelope check can catch a portfolio regression.
	MinSlices int
}

// All returns the benchmark specs in the paper's order: the seven
// single-region kernels of §4.1 first, then the multi-phase variants that
// restore the several-hot-routines shape of the full benchmarks (Table 2's
// 2-8 slices per binary), then the scaled random-program families.
func All() []Spec {
	return []Spec{
		Em3d(),
		Health(),
		Mst(),
		TreeaddDF(),
		TreeaddBF(),
		Mcf(),
		Vpr(),
		Em3dMulti(),
		McfMulti(),
		MstMulti(),
		Rand2p(),
		Rand3p(),
	}
}

// ByName returns the named spec.
func ByName(name string) (Spec, error) {
	for _, s := range All() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workloads: unknown benchmark %q", name)
}

// heap lays out fixed-size records at shuffled addresses, destroying the
// allocation-order locality a real long-running program loses to heap churn.
type heap struct {
	p       *ir.Program
	base    uint64
	slot    int
	order   []int
	recSize uint64
}

// newHeap reserves n records of recSize bytes (rounded up to a multiple of
// the 64-byte line) at base, visited in a seeded random order.
func newHeap(p *ir.Program, base uint64, n int, recSize uint64, seed int64) *heap {
	if recSize%64 != 0 {
		recSize = (recSize/64 + 1) * 64
	}
	return &heap{
		p:       p,
		base:    base,
		order:   rand.New(rand.NewSource(seed)).Perm(n),
		recSize: recSize,
	}
}

// alloc returns the address of the next record.
func (h *heap) alloc() uint64 {
	a := h.base + uint64(h.order[h.slot])*h.recSize
	h.slot++
	return a
}

// end returns the first address beyond the heap.
func (h *heap) end() uint64 { return h.base + uint64(len(h.order))*h.recSize }

// epilogue stores the checksum register to ResultAddr and halts.
func epilogue(bb *ir.BlockBuilder, sumReg ir.Reg) {
	bb.MovI(28, int64(ResultAddr))
	bb.St(28, 0, sumReg)
	bb.Halt()
}
