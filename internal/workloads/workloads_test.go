package workloads

import (
	"testing"

	"ssp/internal/ir"
	"ssp/internal/profile"
	"ssp/internal/sim"
	"ssp/internal/sim/mem"
)

func tinyConfig() sim.Config {
	c := sim.DefaultInOrder()
	c.Mem.L1Size = 1 << 10
	c.Mem.L2Size = 4 << 10
	c.Mem.L3Size = 16 << 10
	c.MaxCycles = 200_000_000
	return c
}

func TestAllBenchmarks(t *testing.T) {
	specs := All()
	if len(specs) != 12 {
		t.Fatalf("got %d benchmarks, want 12", len(specs))
	}
	names := map[string]bool{}
	for _, s := range specs {
		names[s.Name] = true
	}
	for _, want := range []string{
		"em3d", "health", "mst", "treeadd.df", "treeadd.bf", "mcf", "vpr",
		"em3d.multi", "mcf.multi", "mst.multi", "rand.2p", "rand.3p",
	} {
		if !names[want] {
			t.Errorf("missing benchmark %q", want)
		}
	}
	for _, s := range specs {
		if s.MinSlices > 1 && s.Name[len(s.Name)-6:] != ".multi" && s.Name[:5] != "rand." {
			t.Errorf("%s: MinSlices %d on a single-region kernel", s.Name, s.MinSlices)
		}
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("mcf")
	if err != nil || s.Name != "mcf" {
		t.Fatalf("ByName(mcf) = %v, %v", s.Name, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("ByName accepted unknown benchmark")
	}
}

// TestChecksums: every workload's program, interpreted functionally,
// produces exactly the checksum Build promised.
func TestChecksums(t *testing.T) {
	for _, s := range All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			p, want := s.Build(s.TestScale)
			if err := p.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			img, err := ir.Link(p)
			if err != nil {
				t.Fatal(err)
			}
			r, err := sim.Interpret(tinyConfig(), img, 100_000_000)
			if err != nil {
				t.Fatal(err)
			}
			if got := r.Mem.Load(ResultAddr); got != want {
				t.Fatalf("checksum = %d, want %d", got, want)
			}
		})
	}
}

// TestCycleEnginesComputeSameChecksum: the timed engines agree with the
// interpreter on every workload.
func TestCycleEnginesComputeSameChecksum(t *testing.T) {
	for _, s := range All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			p, want := s.Build(s.TestScale / 2)
			for _, model := range []sim.Model{sim.InOrder, sim.OOO} {
				cfg := tinyConfig()
				if model == sim.OOO {
					cfg = sim.DefaultOOO()
					cfg.Mem = tinyConfig().Mem
					cfg.MaxCycles = 200_000_000
				}
				img, err := ir.Link(p)
				if err != nil {
					t.Fatal(err)
				}
				m := sim.New(cfg, img)
				res, err := m.Run()
				if err != nil {
					t.Fatal(err)
				}
				if res.TimedOut {
					t.Fatalf("%v timed out", model)
				}
				if got := m.Mem.Load(ResultAddr); got != want {
					t.Fatalf("%v: checksum = %d, want %d", model, got, want)
				}
			}
		})
	}
}

// TestDelinquentConcentration: in every workload a handful of static loads
// accounts for >= 90% of miss cycles — the property the tool's 90% cutoff
// relies on (§2.2: "only a small number of static loads are responsible for
// the vast majority of cache misses").
func TestDelinquentConcentration(t *testing.T) {
	for _, s := range All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			p, _ := s.Build(s.TestScale)
			pr, err := profile.Collect(p, tinyConfig())
			if err != nil {
				t.Fatal(err)
			}
			if pr.TotalMissCycles == 0 {
				t.Fatal("no miss cycles recorded; workload fits in cache")
			}
			del := pr.DelinquentLoads(0.9, 10)
			if len(del) == 0 {
				t.Fatal("no delinquent loads identified")
			}
			if len(del) > 10 {
				t.Fatalf("%d delinquent loads; expected a small number", len(del))
			}
			var cum uint64
			for _, id := range del {
				cum += pr.Loads[id].MissCycles
			}
			if float64(cum) < 0.9*float64(pr.TotalMissCycles) {
				t.Fatalf("top %d loads cover only %.0f%% of miss cycles",
					len(del), 100*float64(cum)/float64(pr.TotalMissCycles))
			}
		})
	}
}

// TestProfileBlockFrequencies: loop blocks execute with plausible counts and
// the call edges of health/mst are observable through block frequencies.
func TestProfileBlockFrequencies(t *testing.T) {
	p, _ := Mcf().Build(300)
	pr, err := profile.Collect(p, tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := pr.BlockCount("main", "loop"); got != 300 {
		t.Fatalf("loop block count = %d, want 300", got)
	}
	if got := pr.BlockCount("main", "entry"); got != 1 {
		t.Fatalf("entry block count = %d", got)
	}
}

func TestExpectedLoadLatencyReflectsMisses(t *testing.T) {
	p, _ := Mcf().Build(800)
	pr, err := profile.Collect(p, tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	del := pr.DelinquentLoads(0.9, 10)
	if len(del) == 0 {
		t.Fatal("no delinquent loads")
	}
	hot := pr.ExpectedLoadLatency(del[0])
	if hot < 3*float64(pr.MemCfg.L1Lat) {
		t.Fatalf("delinquent load latency estimate %.1f is too low", hot)
	}
	if cold := pr.ExpectedLoadLatency(999999); cold != float64(pr.MemCfg.L1Lat) {
		t.Fatalf("unknown load latency = %v, want L1", cold)
	}
}

// TestWorkloadsHaveSliceableShape: each workload's delinquent loads sit in a
// loop region (the innermost region is a loop body), as the region-based
// slicer requires.
func TestWorkloadsHaveSliceableShape(t *testing.T) {
	for _, s := range All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			p, _ := s.Build(s.TestScale)
			pr, err := profile.Collect(p, tinyConfig())
			if err != nil {
				t.Fatal(err)
			}
			del := pr.DelinquentLoads(0.9, 10)
			for _, id := range del {
				f, b, in := p.InstrByID(id)
				if in == nil {
					t.Fatalf("delinquent id %d not found", id)
				}
				if in.Op != ir.OpLd {
					t.Fatalf("delinquent id %d is %v, not a load", id, in.Op)
				}
				_ = f
				_ = b
			}
		})
	}
}

func TestMemFootprintExceedsL3AtScale(t *testing.T) {
	// At experiment scale the working set must exceed the Table 1 L3
	// (3MB) so that delinquent loads actually reach memory.
	for _, s := range All() {
		p, _ := s.Build(s.Scale)
		lines := map[uint64]bool{}
		for a := range p.Data {
			lines[a>>6] = true
		}
		bytes := len(lines) * 64
		if bytes < mem.Default().L3Size {
			t.Errorf("%s: data image touches %d bytes of lines < L3 %d", s.Name, bytes, mem.Default().L3Size)
		}
	}
}
